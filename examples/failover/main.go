// Failover: the Figure 13 (A) scenario as a library program. Sixteen
// latency-sensitive 5 MiB inter-DC transfers saturate the border cut while
// one of the eight border links is down; the program compares the full Uno
// stack (UnoLB + erasure coding) against Uno without EC and plain ECMP.
package main

import (
	"fmt"

	"uno"
)

func main() {
	const (
		nFlows   = 16
		flowSize = 5 << 20
	)
	for _, stack := range []uno.Stack{uno.UnoStack(), uno.UnoNoECStack(), uno.UnoECMPStack()} {
		sim := uno.NewSim(11, uno.DefaultTopology(), stack)
		// Take down border link 2 in both directions before traffic starts.
		sim.Topo.FailBorderLink(0, 1, 2)

		var specs []uno.FlowSpec
		for i := 0; i < nFlows; i++ {
			specs = append(specs, uno.FlowSpec{
				Src:  (i * 8) % 128,
				Dst:  128 + (i*8+i)%128,
				Size: flowSize,
			})
		}
		sim.Schedule(specs)
		sim.Run(uno.Second)

		var worst uno.Time
		var sum uno.Time
		for _, r := range sim.Results() {
			sum += r.FCT
			if r.FCT > worst {
				worst = r.FCT
			}
		}
		n := len(sim.Results())
		fmt.Printf("%-10s  completed %2d/%d  mean FCT %-10v  worst %-10v\n",
			stack.Name, n, nFlows, sum/uno.Time(n), worst)
	}
	fmt.Println("\n(1 of 8 border links failed; EC+UnoLB routes blocks around it without timeouts)")
}
