// Experiments: drive the paper's evaluation programmatically — run a
// selection of the registered experiments through the library API, print
// their reports, and export CSV artifacts (the same layout as the paper
// artifact's artifact_results/ directories).
package main

import (
	"fmt"
	"os"

	"uno"
)

func main() {
	outDir := "artifact_results"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}

	// A quick-validation subset, like the artifact's sc25_quick_validation.
	quick := []string{"fig1", "table1", "fig4", "ext-trim"}
	for _, id := range quick {
		report, ok := uno.RunExperiment(id, uno.ExperimentConfig{Scale: 1, Seed: 42})
		if !ok {
			panic("unknown experiment " + id)
		}
		fmt.Println(report.String())
		paths, err := report.WriteArtifacts(outDir)
		if err != nil {
			panic(err)
		}
		fmt.Printf("→ %d artifact files under %s/%s\n\n", len(paths), outDir, id)
	}

	fmt.Println("all registered experiments:")
	for _, e := range uno.Experiments() {
		fmt.Printf("  %-12s %s\n", e.ID, e.Title)
	}
}
