// Quickstart: build the paper's dual-datacenter topology, run one
// intra-DC and one inter-DC transfer under the full Uno stack, and print
// their completion times against the unloaded ideal.
package main

import (
	"fmt"

	"uno"
)

func main() {
	sim := uno.NewSim(42, uno.DefaultTopology(), uno.UnoStack())

	// Host indices are DC-major: 0..127 are DC0, 128..255 are DC1. The
	// first two flows share host 0's NIC, so each sees roughly half the
	// line rate — expect their slowdown vs an idle network to reflect
	// that.
	flows := []uno.FlowSpec{
		{Src: 0, Dst: 37, Size: 8 << 20},   // intra-DC, 8 MiB
		{Src: 0, Dst: 200, Size: 8 << 20},  // inter-DC, 8 MiB
		{Src: 5, Dst: 130, Size: 64 << 10}, // inter-DC, RPC-sized
	}
	sim.Schedule(flows)
	sim.Run(200 * uno.Millisecond)

	fmt.Println("flow results (Uno stack, unloaded fabric):")
	for _, r := range sim.Results() {
		kind := "intra-DC"
		if r.Spec.InterDC {
			kind = "inter-DC"
		}
		fmt.Printf("  %3d → %3d  %8d B  %-8s  FCT %-10v  slowdown ×%.2f\n",
			r.Spec.Src, r.Spec.Dst, r.Spec.Size, kind, r.FCT, r.Slowdown())
	}
	if sim.Pending() > 0 {
		fmt.Println("warning:", sim.Pending(), "flows did not finish")
	}
}
