// Tournament: single coexistence cells as a library program. UnoCC defends
// an intra-DC bottleneck against each baseline arriving over the WAN at
// 128× RTT asymmetry — the adversarial corner of the full pairwise matrix
// that `unosim -exp tournament` sweeps. For each pairing the program
// prints the mid-window Jain index, the per-scheme bandwidth split, and
// the time to sustained fairness.
package main

import (
	"fmt"

	"uno"
)

func main() {
	horizon := 20 * uno.Millisecond

	contenders := uno.TournamentContenders()
	var unocc uno.TournamentContender
	for _, c := range contenders {
		if c.Name == "unocc" {
			unocc = c
		}
	}
	var mixed uno.TournamentRegime
	for _, r := range uno.TournamentRegimes() {
		if r.Name == "mixed-128x" {
			mixed = r
		}
	}

	fmt.Printf("=== unocc (intra) vs challenger (inter, RTT ratio %gx), horizon %v\n",
		mixed.Ratio, horizon)
	fmt.Printf("%-10s %-10s %-10s %-10s %s\n",
		"challenger", "jain(mid)", "uno share", "chal share", "ttf(J>0.75)")
	for _, far := range contenders {
		if far.Name == "unocc" {
			continue
		}
		res := uno.TournamentCell(42, unocc, far, mixed, horizon)
		ttf := "never"
		if res.TTFMillis >= 0 {
			ttf = fmt.Sprintf("%.2fms", res.TTFMillis)
		}
		fmt.Printf("%-10s %-10.3f %-10.3f %-10.3f %s\n",
			far.Name, res.Jain, res.NearShare, res.FarShare, ttf)
	}
	fmt.Println("\nfull matrix: unosim -exp tournament [-json out.json]")
}
