# Tier-1 verification (the gate every PR must keep green) and the fuller
# CI path with vet + the race detector.

.PHONY: build test vet race ci bench fuzz

build:
	go build ./...

# Tier-1: what ROADMAP.md requires to stay no worse than the seed.
test: build
	go test ./...

vet:
	go vet ./...

# The simulator is single-goroutine per Sim; the harness fan-out layer
# (RunParallel) is the only sanctioned concurrency. Keep it race-clean.
race:
	go test -race ./...

ci:
	./scripts/ci.sh

# Longer fuzzing sessions than the CI smoke (override with FUZZTIME=5m).
FUZZTIME ?= 60s
fuzz:
	go test -run '^$$' -fuzz '^FuzzSchedulerOps$$' -fuzztime $(FUZZTIME) ./internal/eventq/
	go test -run '^$$' -fuzz '^FuzzReceiverPacket$$' -fuzztime $(FUZZTIME) ./internal/transport/

bench:
	go test -bench . -benchtime 1x -run '^$$' ./...
