# Tier-1 verification (the gate every PR must keep green) and the fuller
# CI path with vet + the race detector.

.PHONY: build test vet race ci bench

build:
	go build ./...

# Tier-1: what ROADMAP.md requires to stay no worse than the seed.
test: build
	go test ./...

vet:
	go vet ./...

# The simulator is single-goroutine per Sim; the harness fan-out layer
# (RunParallel) is the only sanctioned concurrency. Keep it race-clean.
race:
	go test -race ./...

ci:
	./scripts/ci.sh

bench:
	go test -bench . -benchtime 1x -run '^$$' ./...
